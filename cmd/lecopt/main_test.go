package main

import (
	"os"
	"path/filepath"
	"testing"

	"lecopt/internal/catio"
	"lecopt/internal/core"
)

func TestRunExample11(t *testing.T) {
	err := run("", "example11", "SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k",
		"700:0.2,2000:0.8", "", "lsc-mode,algorithm-c", 3, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSimulationAndChain(t *testing.T) {
	err := run("", "example11", "SELECT * FROM A, B WHERE A.k = B.k",
		"700:0.5,2000:0.5", "sticky:0.8", "algorithm-c", 3, 200, 7, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWarehouseDemo(t *testing.T) {
	err := run("", "warehouse", "SELECT * FROM sales, customer WHERE sales.customer_k = customer.k",
		"256:1,1024:1", "", "lsc-mean,algorithm-c", 2, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCatalogFile(t *testing.T) {
	doc := `{"tables":[{"name":"t","pages":100,"rows":1000,
		"columns":[{"name":"k","distinct":1000,"min":0,"max":999}]}]}`
	path := filepath.Join(t.TempDir(), "cat.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "SELECT * FROM t", "100", "", "algorithm-c", 3, 0, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"both catalog and demo", func() error {
			return run("x.json", "example11", "SELECT * FROM A", "10", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"missing catalog file", func() error {
			return run("/nonexistent.json", "", "SELECT * FROM A", "10", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"unknown demo", func() error {
			return run("", "bogus", "SELECT * FROM A", "10", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"no sql", func() error {
			return run("", "example11", "", "10", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"bad sql", func() error {
			return run("", "example11", "DELETE FROM A", "10", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"bad mem law", func() error {
			return run("", "example11", "SELECT * FROM A", "oops", "", "algorithm-c", 3, 0, 1, false)
		}},
		{"bad chain", func() error {
			return run("", "example11", "SELECT * FROM A", "10", "volatile", "algorithm-c", 3, 0, 1, false)
		}},
		{"unknown algorithm", func() error {
			return run("", "example11", "SELECT * FROM A", "10", "", "alg-zzz", 3, 0, 1, false)
		}},
		{"no algorithms", func() error {
			return run("", "example11", "SELECT * FROM A", "10", "", ",", 3, 0, 1, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f(); err == nil {
				t.Fatalf("%s should fail", tc.name)
			}
		})
	}
}

func TestParseAlgs(t *testing.T) {
	algs, err := parseAlgs("lsc-mean, algorithm-c")
	if err != nil || len(algs) != 2 || algs[1] != core.AlgC {
		t.Fatalf("parseAlgs: %v %v", algs, err)
	}
}

func TestParseChain(t *testing.T) {
	mem, err := catio.ParseMemLaw("10:1,20:1")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := parseChain("sticky:0.9", mem)
	if err != nil || ch.Len() != 2 {
		t.Fatalf("parseChain: %v", err)
	}
	if _, err := parseChain("sticky:9", mem); err == nil {
		t.Fatal("stay>1 should fail")
	}
}

func TestIndent(t *testing.T) {
	got := indent("a\nb", "  ")
	if got != "  a\n  b" {
		t.Fatalf("indent = %q", got)
	}
}
