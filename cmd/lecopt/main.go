// Command lecopt optimizes a SQL query under an uncertain execution
// environment and prints the plan each algorithm chooses, with its
// expected cost. It is the interactive face of the LEC optimizer library.
//
// Usage:
//
//	lecopt -demo example11 -mem "700:0.2,2000:0.8" \
//	       -sql "SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k"
//
//	lecopt -catalog schema.json -mem "64:1,256:1,1024:2" -algs lsc-mean,algorithm-c \
//	       -sql "SELECT * FROM t0, t1 WHERE t0.k = t1.k" -simulate 10000
//
// The -chain flag turns the environment dynamic: "sticky:0.8" builds a
// Markov chain over the memory law's support that stays put with
// probability 0.8 per join phase (Section 3.5 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lecopt"

	"lecopt/internal/catalog"
	"lecopt/internal/catio"
	"lecopt/internal/dist"
	"lecopt/internal/experiments"
	"lecopt/internal/workload"
)

func main() {
	var (
		catalogPath = flag.String("catalog", "", "path to a catalog JSON file")
		demo        = flag.String("demo", "", "built-in demo catalog: example11 | warehouse")
		sqlText     = flag.String("sql", "", "query (SELECT * FROM ... WHERE ... [ORDER BY ...])")
		memSpec     = flag.String("mem", "700:0.2,2000:0.8", "memory law, \"pages:weight,...\"")
		chainSpec   = flag.String("chain", "", "dynamic memory: \"sticky:STAY\" over the law's support")
		algsSpec    = flag.String("algs", "lsc-mean,lsc-mode,algorithm-a,algorithm-b,algorithm-c", "comma-separated algorithms")
		topC        = flag.Int("topc", 3, "Algorithm B candidate-list depth")
		simulate    = flag.Int("simulate", 0, "Monte-Carlo runs for a realized-cost tournament (0 = off)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		showPlans   = flag.Bool("plans", true, "print operator trees")
	)
	flag.Parse()
	if err := run(*catalogPath, *demo, *sqlText, *memSpec, *chainSpec, *algsSpec, *topC, *simulate, *seed, *showPlans); err != nil {
		fmt.Fprintln(os.Stderr, "lecopt:", err)
		os.Exit(1)
	}
}

func run(catalogPath, demo, sqlText, memSpec, chainSpec, algsSpec string, topC, simulate int, seed int64, showPlans bool) error {
	cat, err := loadCatalog(catalogPath, demo)
	if err != nil {
		return err
	}
	if sqlText == "" {
		return fmt.Errorf("-sql is required (e.g. \"SELECT * FROM A, B WHERE A.k = B.k\")")
	}
	mem, err := catio.ParseMemLaw(memSpec)
	if err != nil {
		return err
	}
	env := lecopt.Env{Mem: mem}
	if chainSpec != "" {
		chain, err := parseChain(chainSpec, mem)
		if err != nil {
			return err
		}
		env.Chain = chain
	}
	algs, err := parseAlgs(algsSpec)
	if err != nil {
		return err
	}
	// One long-lived handle; the statement is prepared (parsed, validated,
	// canonicalized) once and every algorithm optimizes it through the
	// handle's plan cache.
	opt := lecopt.New(cat, lecopt.WithTopC(topC))
	prep, err := opt.Prepare(sqlText)
	if err != nil {
		return err
	}
	reports := make([]lecopt.PlanReport, 0, len(algs))
	for _, a := range algs {
		resp, err := prep.Optimize(env, a)
		if err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		reports = append(reports, resp.PlanReport)
	}
	fmt.Printf("query: %s\n", prep.Block())
	fmt.Printf("memory law: %s", mem)
	if env.Chain != nil {
		fmt.Printf("  (dynamic: %s)", chainSpec)
	}
	fmt.Println()
	fmt.Println()
	for _, r := range reports {
		fmt.Printf("%-12s  expected cost %.6g  (selection score %.6g, %d candidate plans)\n",
			r.Algorithm, r.EC, r.Score, r.Candidates)
		if showPlans {
			fmt.Println(indent(r.Plan.String(), "    "))
		}
	}
	if simulate > 0 {
		res, err := opt.Tournament(lecopt.Request{Prepared: prep, Env: env}, reports, simulate, seed)
		if err != nil {
			return err
		}
		fmt.Printf("\nrealized-cost tournament (%d runs, common random numbers):\n", simulate)
		for i, name := range res.Names {
			st := res.Stats[i]
			fmt.Printf("  %-12s  mean %.6g  p95 %.6g  max %.6g  wins %d\n",
				name, st.Mean, st.P95, st.Max, res.Wins[i])
		}
	}
	return nil
}

func loadCatalog(path, demo string) (*catalog.Catalog, error) {
	switch {
	case path != "" && demo != "":
		return nil, fmt.Errorf("use either -catalog or -demo, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return catio.Read(f)
	case demo == "example11" || demo == "":
		cat, _, err := experiments.Example11()
		return cat, err
	case demo == "warehouse":
		cat, _, err := workload.Warehouse()
		return cat, err
	default:
		return nil, fmt.Errorf("unknown demo %q (example11 | warehouse)", demo)
	}
}

func parseAlgs(spec string) ([]lecopt.Algorithm, error) {
	byName := map[string]lecopt.Algorithm{}
	for _, a := range lecopt.Algorithms() {
		byName[a.String()] = a
	}
	var out []lecopt.Algorithm
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		a, ok := byName[part]
		if !ok {
			return nil, fmt.Errorf("unknown algorithm %q (want one of %v)", part, lecopt.Algorithms())
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no algorithms selected")
	}
	return out, nil
}

func parseChain(spec string, mem dist.Dist) (*dist.Chain, error) {
	var stay float64
	if _, err := fmt.Sscanf(spec, "sticky:%g", &stay); err != nil {
		return nil, fmt.Errorf("chain spec %q: want \"sticky:STAY\"", spec)
	}
	return dist.Sticky(mem.Support(), stay)
}

func indent(s, pad string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
