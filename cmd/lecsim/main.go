// Command lecsim Monte-Carlo-simulates the warehouse query fleet (or the
// Example 1.1 query) under a chosen environment and reports the realized
// cost of the classical plan versus the LEC plan — the paper's "optimize
// once, execute repeatedly" setting made concrete.
//
// Usage:
//
//	lecsim -env paper-bimodal -runs 10000
//	lecsim -env markov-volatile -query 3
//	lecsim -list-envs
package main

import (
	"flag"
	"fmt"
	"os"

	"lecopt"

	"lecopt/internal/experiments"
	"lecopt/internal/query"
	"lecopt/internal/workload"
)

func main() {
	var (
		envName  = flag.String("env", "paper-bimodal", "environment name from the standard suite")
		queryIdx = flag.Int("query", 0, "warehouse query 1..4, or 0 for the whole fleet")
		example  = flag.Bool("example11", false, "simulate the paper's Example 1.1 instead of the warehouse")
		runs     = flag.Int("runs", 10000, "Monte-Carlo executions per query")
		seed     = flag.Int64("seed", 1, "rng seed")
		listEnvs = flag.Bool("list-envs", false, "list environments and exit")
	)
	flag.Parse()
	if err := run(*envName, *queryIdx, *example, *runs, *seed, *listEnvs); err != nil {
		fmt.Fprintln(os.Stderr, "lecsim:", err)
		os.Exit(1)
	}
}

func run(envName string, queryIdx int, example bool, runs int, seed int64, listEnvs bool) error {
	envs, err := workload.StandardEnvs()
	if err != nil {
		return err
	}
	if listEnvs {
		for _, ne := range envs {
			kind := "static"
			if ne.Env.Chain != nil {
				kind = "markov"
			}
			fmt.Printf("%-16s %-7s %s\n", ne.Name, kind, ne.Env.Mem)
		}
		return nil
	}
	var env lecopt.Env
	found := false
	for _, ne := range envs {
		if ne.Name == envName {
			env, found = ne.Env, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown environment %q (use -list-envs)", envName)
	}

	// One long-lived handle serves the whole fleet; requests differ only
	// in query (and the example's plan-space options).
	type job struct {
		name string
		req  lecopt.Request
	}
	var jobs []job
	var opt *lecopt.Optimizer
	if example {
		cat, blk, err := experiments.Example11()
		if err != nil {
			return err
		}
		opt = lecopt.New(cat, lecopt.WithPlanSpace(experiments.Example11Opts()))
		jobs = append(jobs, job{"example-1.1", lecopt.Request{Query: blk, Env: env}})
	} else {
		cat, queries, err := workload.Warehouse()
		if err != nil {
			return err
		}
		opt = lecopt.New(cat)
		pick := func(i int, q *query.Block) {
			jobs = append(jobs, job{fmt.Sprintf("warehouse-Q%d", i+1), lecopt.Request{Query: q, Env: env}})
		}
		if queryIdx > 0 {
			if queryIdx > len(queries) {
				return fmt.Errorf("query %d out of range 1..%d", queryIdx, len(queries))
			}
			pick(queryIdx-1, queries[queryIdx-1])
		} else {
			for i, q := range queries {
				pick(i, q)
			}
		}
	}

	fmt.Printf("environment %s, %d runs per query (seed %d)\n\n", envName, runs, seed)
	var fleetLSC, fleetLEC float64
	for _, j := range jobs {
		var reports []lecopt.PlanReport
		for _, a := range []lecopt.Algorithm{lecopt.AlgLSCMean, lecopt.AlgC} {
			req := j.req
			req.Alg = a
			resp, err := opt.Optimize(req)
			if err != nil {
				return fmt.Errorf("%s: %s: %w", j.name, a, err)
			}
			reports = append(reports, resp.PlanReport)
		}
		res, err := opt.Tournament(j.req, reports, runs, seed)
		if err != nil {
			return err
		}
		lsc, lec := res.Stats[0], res.Stats[1]
		fleetLSC += lsc.Total
		fleetLEC += lec.Total
		fmt.Printf("%s\n", j.name)
		fmt.Printf("  lsc-mean     mean %.6g  p95 %.6g  max %.6g  wins %d\n", lsc.Mean, lsc.P95, lsc.Max, res.Wins[0])
		fmt.Printf("  algorithm-c  mean %.6g  p95 %.6g  max %.6g  wins %d\n", lec.Mean, lec.P95, lec.Max, res.Wins[1])
		fmt.Printf("  LEC/LSC realized mean ratio: %.4f\n\n", lec.Mean/lsc.Mean)
	}
	if len(jobs) > 1 {
		fmt.Printf("fleet total: lsc %.6g, lec %.6g, ratio %.4f\n", fleetLSC, fleetLEC, fleetLEC/fleetLSC)
	}
	return nil
}
