// Command lecsim Monte-Carlo-simulates the warehouse query fleet (or the
// Example 1.1 query) under a chosen environment and reports the realized
// cost of the classical plan versus the LEC plan — the paper's "optimize
// once, execute repeatedly" setting made concrete.
//
// Usage:
//
//	lecsim -env paper-bimodal -runs 10000
//	lecsim -env markov-volatile -query 3
//	lecsim -list-envs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lecopt/internal/core"
	"lecopt/internal/envsim"
	"lecopt/internal/experiments"
	"lecopt/internal/plan"
	"lecopt/internal/query"
	"lecopt/internal/workload"
)

func main() {
	var (
		envName  = flag.String("env", "paper-bimodal", "environment name from the standard suite")
		queryIdx = flag.Int("query", 0, "warehouse query 1..4, or 0 for the whole fleet")
		example  = flag.Bool("example11", false, "simulate the paper's Example 1.1 instead of the warehouse")
		runs     = flag.Int("runs", 10000, "Monte-Carlo executions per query")
		seed     = flag.Int64("seed", 1, "rng seed")
		listEnvs = flag.Bool("list-envs", false, "list environments and exit")
	)
	flag.Parse()
	if err := run(*envName, *queryIdx, *example, *runs, *seed, *listEnvs); err != nil {
		fmt.Fprintln(os.Stderr, "lecsim:", err)
		os.Exit(1)
	}
}

func run(envName string, queryIdx int, example bool, runs int, seed int64, listEnvs bool) error {
	envs, err := workload.StandardEnvs()
	if err != nil {
		return err
	}
	if listEnvs {
		for _, ne := range envs {
			kind := "static"
			if ne.Env.Chain != nil {
				kind = "markov"
			}
			fmt.Printf("%-16s %-7s %s\n", ne.Name, kind, ne.Env.Mem)
		}
		return nil
	}
	var env envsim.Env
	found := false
	for _, ne := range envs {
		if ne.Name == envName {
			env, found = ne.Env, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown environment %q (use -list-envs)", envName)
	}

	type job struct {
		name string
		sc   *core.Scenario
	}
	var jobs []job
	if example {
		cat, blk, err := experiments.Example11()
		if err != nil {
			return err
		}
		jobs = append(jobs, job{"example-1.1", &core.Scenario{Cat: cat, Query: blk, Env: env, Opts: experiments.Example11Opts()}})
	} else {
		cat, queries, err := workload.Warehouse()
		if err != nil {
			return err
		}
		pick := func(i int, q *query.Block) {
			jobs = append(jobs, job{fmt.Sprintf("warehouse-Q%d", i+1), &core.Scenario{Cat: cat, Query: q, Env: env}})
		}
		if queryIdx > 0 {
			if queryIdx > len(queries) {
				return fmt.Errorf("query %d out of range 1..%d", queryIdx, len(queries))
			}
			pick(queryIdx-1, queries[queryIdx-1])
		} else {
			for i, q := range queries {
				pick(i, q)
			}
		}
	}

	fmt.Printf("environment %s, %d runs per query (seed %d)\n\n", envName, runs, seed)
	var fleetLSC, fleetLEC float64
	for _, j := range jobs {
		reports, err := j.sc.Compare(core.AlgLSCMean, core.AlgC)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		tour := &envsim.Tournament{
			Names: []string{"lsc-mean", "algorithm-c"},
			Plans: []*plan.Node{reports[0].Plan, reports[1].Plan},
		}
		res, err := tour.Run(j.sc.Env, runs, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		lsc, lec := res.Stats[0], res.Stats[1]
		fleetLSC += lsc.Total
		fleetLEC += lec.Total
		fmt.Printf("%s\n", j.name)
		fmt.Printf("  lsc-mean     mean %.6g  p95 %.6g  max %.6g  wins %d\n", lsc.Mean, lsc.P95, lsc.Max, res.Wins[0])
		fmt.Printf("  algorithm-c  mean %.6g  p95 %.6g  max %.6g  wins %d\n", lec.Mean, lec.P95, lec.Max, res.Wins[1])
		fmt.Printf("  LEC/LSC realized mean ratio: %.4f\n\n", lec.Mean/lsc.Mean)
	}
	if len(jobs) > 1 {
		fmt.Printf("fleet total: lsc %.6g, lec %.6g, ratio %.4f\n", fleetLSC, fleetLEC, fleetLEC/fleetLSC)
	}
	return nil
}
