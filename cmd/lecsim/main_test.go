package main

import (
	"testing"
)

func TestRunListEnvs(t *testing.T) {
	if err := run("paper-bimodal", 0, false, 10, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunExample11(t *testing.T) {
	if err := run("paper-bimodal", 0, true, 200, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWarehouseSingleQuery(t *testing.T) {
	if err := run("wide-spread", 1, false, 100, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWarehouseDynamicEnv(t *testing.T) {
	if err := run("markov-volatile", 2, false, 100, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("no-such-env", 0, false, 10, 1, false); err == nil {
		t.Fatal("unknown env should fail")
	}
	if err := run("paper-bimodal", 99, false, 10, 1, false); err == nil {
		t.Fatal("query out of range should fail")
	}
}
