package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lecopt"
)

// TestFleetModeAcceptance regenerates BENCH_fleet.json at the CI smoke
// scale (256 tenants, 2 load levels, 400 requests each) and asserts the
// ISSUE acceptance criteria against the artifact on disk — not the
// printed summary: budget denials engage at the highest load while the
// denied tenants keep being served, at least one engineered churn tenant
// trips its breaker and receives service while open, hedge accounting
// balances, and fleet-aggregate realized LEC stays <= LSC.
func TestFleetModeAcceptance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	var out strings.Builder
	rep, err := runFleetMode(fleetModeConfig{Tenants: 256, Requests: 400, Seed: 1}, path, &out)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art lecopt.FleetReport
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if art.TotalLECIO != rep.TotalLECIO || art.TotalLSCIO != rep.TotalLSCIO ||
		art.RequestsPerLevel != rep.RequestsPerLevel {
		t.Fatalf("artifact disagrees with returned report: %+v vs %+v", art, rep)
	}

	if art.Tenants < 256 || len(art.Levels) < 2 {
		t.Fatalf("acceptance scale not met: %d tenants, %d levels", art.Tenants, len(art.Levels))
	}
	if art.Errors != 0 {
		t.Fatalf("fleet run had %d errors", art.Errors)
	}

	// Aggregate claim: realized LEC <= LSC fleet-wide.
	if art.TotalLECIO > art.TotalLSCIO {
		t.Fatalf("fleet aggregate realized LEC %d > LSC %d", art.TotalLECIO, art.TotalLSCIO)
	}
	if art.RealizedRatio > 1.0 {
		t.Fatalf("realized ratio %v > 1.0", art.RealizedRatio)
	}
	if !art.RankAgreement {
		t.Fatal("per-archetype rank agreement violated")
	}

	// Budget denials engage at the highest load level — and every request
	// was still answered (errors stay zero; denied requests land on the
	// denied-cache / denied-degraded decisions).
	high := art.Levels[0]
	for _, lvl := range art.Levels[1:] {
		if lvl.QPS > high.QPS {
			high = lvl
		}
	}
	if high.BudgetDenials == 0 {
		t.Fatalf("no budget denials at the highest load level (%v qps)", high.QPS)
	}
	denialServed := 0
	for _, dc := range high.Decisions {
		if dc.Decision == "denied-cache" || dc.Decision == "denied-degraded" {
			denialServed += dc.Count
		}
	}
	if denialServed != high.BudgetDenials {
		t.Fatalf("denied requests not all served: %d decisions vs %d denials",
			denialServed, high.BudgetDenials)
	}

	// At least one engineered churn tenant trips its breaker and is still
	// served while the breaker is open.
	for _, lvl := range art.Levels {
		tripped := false
		for _, ts := range lvl.ChurnTenantStats {
			if ts.Trips >= 1 && ts.OpenServed >= 1 {
				tripped = true
			}
		}
		if !tripped {
			t.Fatalf("level %v qps: no churn tenant tripped with open-state service: %+v",
				lvl.QPS, lvl.ChurnTenantStats)
		}
		// Hedge accounting identity per level.
		if lvl.HedgeWins+lvl.HedgeLosses+lvl.HedgeCancels != lvl.HedgesFired {
			t.Fatalf("level %v qps: hedge accounting broken: %d+%d+%d != %d",
				lvl.QPS, lvl.HedgeWins, lvl.HedgeLosses, lvl.HedgeCancels, lvl.HedgesFired)
		}
		// The per-request optimize-latency histogram covers every served
		// request with sane quantile ordering.
		h := lvl.OptimizeLatency
		if h.Count != lvl.Requests-lvl.Errors {
			t.Fatalf("level %v qps: histogram count %d, want %d", lvl.QPS, h.Count, lvl.Requests-lvl.Errors)
		}
		if h.P50 > h.P99 || h.P99 > h.Max || h.P50 <= 0 {
			t.Fatalf("level %v qps: implausible latency quantiles %+v", lvl.QPS, h)
		}
	}

	for _, want := range []string{
		"fleet:", "resilience:", "churn tenant-",
		"claim (fleet aggregate realized LEC <= LSC): HOLDS",
		"claim (per-archetype analytic ranking matches realized ranking): HOLDS",
		"wrote ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestFleetModeBadConfig: a zero-request fleet run must fail loudly.
func TestFleetModeBadConfig(t *testing.T) {
	if _, err := runFleetMode(fleetModeConfig{Requests: 0, Seed: 1}, "", nil); err == nil {
		t.Fatal("zero-request fleet run accepted")
	}
}
