package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"lecopt"
)

// workloadModeConfig parameterizes one engine-in-the-loop serving run.
type workloadModeConfig struct {
	Requests  int
	Queries   int     // 0: spec default
	Zipf      float64 // 0: spec default
	Seed      int64
	Workers   int
	CacheSize int
	DriftBand float64 // 0: service default (banded); <= 1: exact keys
	NoBands   bool    // skip the model-agreement band sweeps
	NoIndex   bool    // heap-only mix: no physical indexes, no index plans
}

// workloadArtifact is the BENCH_workload.json payload: the serving report
// plus the model-agreement band sweeps with the feedback loop off and on,
// so the executed-size feedback effect is tracked across PRs alongside
// the realized-I/O trajectory.
type workloadArtifact struct {
	lecopt.WorkloadReport
	ModelAgreementNoFeedback *lecopt.AgreementReport `json:"model_agreement_no_feedback,omitempty"`
	ModelAgreementFeedback   *lecopt.AgreementReport `json:"model_agreement_feedback,omitempty"`
}

// runWorkloadMode drives the serving simulator over the default Zipf+Markov
// mix (optionally resized/reskewed), prints a realized-I/O summary and
// writes the BENCH_workload.json artifact — the empirical LSC-vs-LEC
// ground truth future optimizer PRs are compared against.
func runWorkloadMode(cfg workloadModeConfig, jsonPath string, w io.Writer) (*lecopt.WorkloadReport, error) {
	spec, err := lecopt.DefaultWorkloadSpec()
	if err != nil {
		return nil, err
	}
	if cfg.Queries > 0 {
		spec.Queries = cfg.Queries
	}
	if cfg.Zipf > 0 {
		spec.ZipfS = cfg.Zipf
	}
	// -noindex reproduces the historical heap-only artifact: the mix
	// builds no physical indexes and the optimizer's plan space drops
	// index access paths — a spec decision, not a hardcoded option.
	spec.DisableIndexes = cfg.NoIndex
	rep, err := lecopt.RunWorkload(spec, lecopt.WorkloadRun{
		Requests:  cfg.Requests,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		CacheSize: cfg.CacheSize,
		DriftBand: cfg.DriftBand,
	})
	if err != nil {
		return nil, err
	}

	access := "index-enabled"
	if spec.DisableIndexes {
		access = "heap-only (-noindex)"
	}
	fmt.Fprintf(w, "workload: %d requests over %d queries x %d tenants (zipf %.2f, seed %d, %s)\n",
		rep.Requests, rep.Queries, rep.Tenants, spec.ZipfS, rep.Seed, access)
	indexPlans := 0
	for _, pc := range rep.PlanDump {
		if strings.Contains(pc.Plan, "index") {
			indexPlans++
		}
	}
	fmt.Fprintf(w, "  executed plans: %d distinct, %d index-bearing\n", len(rep.PlanDump), indexPlans)
	fmt.Fprintf(w, "  realized I/O: %s=%d pages, %s=%d pages, ratio %.4f (predicted %.4f)\n",
		rep.LSCAlgorithm, rep.TotalLSCIO, rep.LECAlgorithm, rep.TotalLECIO,
		rep.RealizedRatio, rep.PredictedRatio)
	fmt.Fprintf(w, "  per request: %d LEC wins, %d ties, %d losses (plans agree on %.0f%%)\n",
		rep.Wins, rep.Ties, rep.Losses, 100*rep.PlanAgreementRate)
	fmt.Fprintf(w, "  regret p50/p90/p99: LEC %.0f/%.0f/%.0f pages, LSC %.0f/%.0f/%.0f pages\n",
		rep.LECRegretP50, rep.LECRegretP90, rep.LECRegretP99,
		rep.LSCRegretP50, rep.LSCRegretP90, rep.LSCRegretP99)
	fmt.Fprintf(w, "  %d distinct optimizations, plan cache %.1f%% (drift band %g, %d evictions), exec cache %.1f%%\n",
		rep.DistinctOptimizations, 100*rep.PlanCacheHitRate, rep.DriftBand,
		rep.PlanCacheEvictions, 100*rep.ExecCacheHitRate)
	for _, ts := range rep.PerTenant {
		rank := "rank-ok"
		if !ts.RankAgreement {
			rank = "RANK-INVERSION"
		}
		fmt.Fprintf(w, "  tenant %-16s %4d req  ratio %.4f (pred %.4f)  (w/t/l %d/%d/%d)  %s\n",
			ts.Name, ts.Requests, ts.Ratio, ts.PredictedRatio, ts.Wins, ts.Ties, ts.Losses, rank)
	}
	fmt.Fprintf(w, "  phase ledger: %d attribution cells\n", len(rep.PhaseLedger))
	claim := "HOLDS"
	if rep.TotalLECIO > rep.TotalLSCIO {
		claim = "VIOLATED"
	}
	fmt.Fprintf(w, "  claim (aggregate realized LEC <= LSC): %s\n", claim)
	rankClaim := "HOLDS"
	if !rep.RankAgreement {
		rankClaim = "VIOLATED"
	}
	fmt.Fprintf(w, "  claim (per-tenant analytic ranking matches realized ranking): %s\n", rankClaim)

	artifact := workloadArtifact{WorkloadReport: *rep}
	if !cfg.NoBands {
		// Model-agreement band sweep under the mix's drift axis, feedback
		// off then on: the before/after effect of the executed-size loop.
		agreeCfg := lecopt.AgreementConfig{Seed: cfg.Seed, DriftFactors: spec.Drift.Factors}
		before, err := lecopt.MeasureModelAgreement(spec, agreeCfg)
		if err != nil {
			return rep, err
		}
		agreeCfg.Feedback = true
		after, err := lecopt.MeasureModelAgreement(spec, agreeCfg)
		if err != nil {
			return rep, err
		}
		artifact.ModelAgreementNoFeedback = before
		artifact.ModelAgreementFeedback = after
		fmt.Fprintf(w, "  model agreement (NL): worst band %.2fx -> %.2fx, mean |log ratio| %.3f -> %.3f with feedback (%d observations)\n",
			before.BandNL, after.BandNL, before.MeanAbsLogNL, after.MeanAbsLogNL,
			after.FeedbackObservations)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "  wrote %s\n", jsonPath)
	}
	// The rank-agreement claim gates CI unconditionally — for the default
	// mix and the heap-only mix alike. An inversion means the model ranked
	// the two policies opposite to the engine's realized I/O for some tenant
	// — exactly the regression the phase ledger exists to localize. The
	// artifact is written first so the failing run leaves its ledger behind.
	// (The historical -norankgate waiver covered shared-volatile's heap-only
	// inversion under the paper model; charging serving with the
	// engine-exact pass model closed it, so the waiver is retired.)
	if !rep.RankAgreement {
		for _, ts := range rep.PerTenant {
			if !ts.RankAgreement {
				return rep, fmt.Errorf("workload: tenant %s rank inversion: predicted ratio %.4f, realized %.4f",
					ts.Name, ts.PredictedRatio, ts.Ratio)
			}
		}
		return rep, fmt.Errorf("workload: rank inversion")
	}
	return rep, nil
}
