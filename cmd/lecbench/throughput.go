package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"lecopt"
	"lecopt/internal/histo"
	"lecopt/internal/workload"
)

// throughputConfig parameterizes one batch-throughput run.
type throughputConfig struct {
	Workers   int     `json:"workers"`
	Requests  int     `json:"requests"`
	Distinct  int     `json:"distinct_scenarios"`
	Cache     bool    `json:"cache"`
	CacheSize int     `json:"cache_size"`
	QPS       float64 `json:"qps_limit"`
	Seed      int64   `json:"seed"`
	Alg       string  `json:"alg"`
	// MaxAllocs, when positive, turns the run into an allocation
	// regression gate: the run fails if allocs/op exceeds it. The CI
	// bench-smoke lane sets it just above the committed artifact's figure.
	MaxAllocs float64 `json:"max_allocs_per_op,omitempty"`
}

// throughputReport is the BENCH_batch.json artifact: the perf trajectory
// future PRs compare against.
type throughputReport struct {
	throughputConfig
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	PlansPerSec     float64 `json:"plans_per_sec"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CacheEvictions  uint64  `json:"cache_evictions"`
	CacheShardSizes []int   `json:"cache_shard_occupancy"`
	Errors          int     `json:"errors"`
	// OptimizeLatency is the per-request optimize-latency distribution in
	// microseconds (wall-clock, from Response.Elapsed) — the same summary
	// type the fleet report emits, so p50/p99 regressions are comparable
	// across the batch and fleet artifacts.
	OptimizeLatency histo.Summary `json:"optimize_latency_micros"`
}

func algByName(name string) (lecopt.Algorithm, error) {
	for _, a := range lecopt.Algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (see lecopt.Algorithms)", name)
}

// buildRequests generates cfg.Distinct random scenarios (mixed shapes,
// sizes and environments — all seeded, so a run is reproducible) and a
// request stream of cfg.Requests requests sampling them uniformly. Repeats
// in the stream are what the handle's plan cache exploits.
func buildRequests(cfg throughputConfig) ([]lecopt.Request, error) {
	alg, err := algByName(cfg.Alg)
	if err != nil {
		return nil, err
	}
	envs, err := workload.StandardEnvs()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random}
	distinct := make([]lecopt.Request, cfg.Distinct)
	for i := range distinct {
		tables := 2 + rng.Intn(4) // 2..5 relations
		sc, err := workload.Generate(workload.DefaultSpec(tables, shapes[rng.Intn(len(shapes))]), rng)
		if err != nil {
			return nil, err
		}
		distinct[i] = lecopt.Request{Cat: sc.Cat, Query: sc.Block, Env: envs[i%len(envs)].Env, Alg: alg}
	}
	reqs := make([]lecopt.Request, cfg.Requests)
	for i := range reqs {
		reqs[i] = distinct[rng.Intn(len(distinct))]
	}
	return reqs, nil
}

// runThroughput drives the batch pipeline and reports plans/sec, allocation
// rates and cache effectiveness. With cfg.QPS > 0 the request stream is
// paced to that offered load (in 100ms slices); otherwise the pipeline runs
// flat out.
func runThroughput(cfg throughputConfig, jsonPath string, w io.Writer) (throughputReport, error) {
	if cfg.Requests < 1 || cfg.Distinct < 1 {
		return throughputReport{}, fmt.Errorf("requests and distinct must be positive")
	}
	reqs, err := buildRequests(cfg)
	if err != nil {
		return throughputReport{}, err
	}
	handleOpts := []lecopt.Option{lecopt.WithWorkers(cfg.Workers), lecopt.WithoutFeedback()}
	if cfg.Cache {
		handleOpts = append(handleOpts, lecopt.WithPlanCache(cfg.CacheSize))
	} else {
		handleOpts = append(handleOpts, lecopt.WithoutPlanCache())
	}
	opt := lecopt.New(nil, handleOpts...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var results []lecopt.Response
	if cfg.QPS > 0 {
		// Release ~10 slices a second, pacing against a start-anchored
		// schedule: the next slice is not released before the instant by
		// which `end` plans should have been offered at cfg.QPS. Sleeping
		// a flat interval instead would add the slice's own processing
		// time to every cycle and systematically under-deliver the rate.
		slice := int(math.Ceil(cfg.QPS / 10))
		for off := 0; off < len(reqs); off += slice {
			end := off + slice
			if end > len(reqs) {
				end = len(reqs)
			}
			results = append(results, opt.OptimizeBatch(reqs[off:end])...)
			if end < len(reqs) {
				due := start.Add(time.Duration(float64(end) / cfg.QPS * float64(time.Second)))
				time.Sleep(time.Until(due))
			}
		}
	} else {
		results = opt.OptimizeBatch(reqs)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	rep := throughputReport{
		throughputConfig: cfg,
		ElapsedSeconds:   elapsed.Seconds(),
		PlansPerSec:      float64(len(results)) / elapsed.Seconds(),
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / float64(len(results)),
		BytesPerOp:       float64(after.TotalAlloc-before.TotalAlloc) / float64(len(results)),
	}
	var lat histo.Histogram
	for i, r := range results {
		if r.Err != nil {
			rep.Errors++
			if rep.Errors == 1 {
				fmt.Fprintf(w, "first failure: request %d: %v\n", i, r.Err)
			}
			continue
		}
		lat.Observe(float64(r.Elapsed.Nanoseconds()) / 1e3)
	}
	rep.OptimizeLatency = lat.Summary()
	if cfg.Cache {
		st := opt.CacheStats()
		rep.CacheHits, rep.CacheMisses, rep.CacheHitRate = st.Hits, st.Misses, st.HitRate()
		rep.CacheEvictions, rep.CacheShardSizes = st.Evictions, st.ShardSizes
	}

	fmt.Fprintf(w, "batch throughput: %d requests over %d scenarios, %d workers, cache=%v\n",
		cfg.Requests, cfg.Distinct, cfg.Workers, cfg.Cache)
	fmt.Fprintf(w, "  %.0f plans/sec (%.3fs elapsed), %.0f allocs/op, %.0f bytes/op\n",
		rep.PlansPerSec, rep.ElapsedSeconds, rep.AllocsPerOp, rep.BytesPerOp)
	fmt.Fprintf(w, "  optimize latency p50/p90/p99/max: %.0f/%.0f/%.0f/%.0f us\n",
		rep.OptimizeLatency.P50, rep.OptimizeLatency.P90, rep.OptimizeLatency.P99, rep.OptimizeLatency.Max)
	if cfg.Cache {
		fmt.Fprintf(w, "  cache: %d hits, %d misses, %.1f%% hit rate, %d evictions\n",
			rep.CacheHits, rep.CacheMisses, 100*rep.CacheHitRate, rep.CacheEvictions)
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("%d of %d jobs failed", rep.Errors, len(results))
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "  wrote %s\n", jsonPath)
	}
	// Gate after writing the artifact so a failing run still leaves its
	// numbers on disk for diagnosis.
	if cfg.MaxAllocs > 0 && rep.AllocsPerOp > cfg.MaxAllocs {
		return rep, fmt.Errorf("allocation gate: %.2f allocs/op exceeds -maxallocs=%.2f",
			rep.AllocsPerOp, cfg.MaxAllocs)
	}
	return rep, nil
}
