package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lecopt"
)

// fleetModeConfig parameterizes one fleet-scale resilience run.
type fleetModeConfig struct {
	Tenants   int // 0: spec default
	Requests  int // stream length per load level
	Seed      int64
	Workers   int
	CacheSize int
	DriftBand float64 // 0: service default
}

// runFleetMode drives the fleet simulator — Zipf tenant traffic over
// shared-catalog groups, replayed at each offered load level through the
// resilience wrapper — prints a per-level summary and writes the
// BENCH_fleet.json artifact. It gates on zero errors and on the fleet
// keeping aggregate realized LEC <= LSC with tenant-aggregate rank
// consistency.
func runFleetMode(cfg fleetModeConfig, jsonPath string, w io.Writer) (*lecopt.FleetReport, error) {
	spec, err := lecopt.DefaultFleetSpec()
	if err != nil {
		return nil, err
	}
	if cfg.Tenants > 0 {
		spec.Tenants = cfg.Tenants
	}
	rep, err := lecopt.RunFleet(spec, lecopt.FleetRun{
		Requests:  cfg.Requests,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		CacheSize: cfg.CacheSize,
		DriftBand: cfg.DriftBand,
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "fleet: %d tenants (%d churn) x %d groups, %d queries, %d requests/level (seed %d)\n",
		rep.Tenants, rep.ChurnTenants, rep.Groups, rep.Queries, rep.RequestsPerLevel, rep.Seed)
	fmt.Fprintf(w, "  policies: %s baseline vs %s served, drift band %g\n",
		rep.LSCAlgorithm, rep.LECAlgorithm, rep.DriftBand)
	for _, lvl := range rep.Levels {
		fmt.Fprintf(w, "  level %8.0f qps: ratio %.4f (pred %.4f), optimize p50/p99 %.0f/%.0f us, wait mean/max %.0f/%d us\n",
			lvl.QPS, lvl.RealizedRatio, lvl.PredictedRatio,
			lvl.OptimizeLatency.P50, lvl.OptimizeLatency.P99,
			lvl.MeanWaitMicros, lvl.MaxWaitMicros)
		fmt.Fprintf(w, "    resilience: %d denials, %d hedges (%dw/%dl/%dc), %d trips, %d reopens, %d open-served, %d degraded\n",
			lvl.BudgetDenials, lvl.HedgesFired, lvl.HedgeWins, lvl.HedgeLosses, lvl.HedgeCancels,
			lvl.BreakerTrips, lvl.BreakerReopens, lvl.OpenServed, lvl.DegradedServed)
		fmt.Fprintf(w, "    plan cache %.1f%%, timeline %d events (%d optimize, %d observe)\n",
			100*lvl.PlanCacheHitRate, lvl.TimelineEvents, lvl.TimelineOptimize, lvl.TimelineObserve)
		for _, ts := range lvl.ChurnTenantStats {
			fmt.Fprintf(w, "    churn %-12s %4d req: %d denials, %d trips, %d open-served, %d degraded, churn %d\n",
				ts.Tenant, ts.Requests, ts.Denials, ts.Trips, ts.OpenServed, ts.Degraded, ts.Churn)
		}
	}
	fmt.Fprintf(w, "  fleet realized I/O: %s=%d pages, %s=%d pages, ratio %.4f (predicted %.4f)\n",
		rep.LSCAlgorithm, rep.TotalLSCIO, rep.LECAlgorithm, rep.TotalLECIO,
		rep.RealizedRatio, rep.PredictedRatio)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "  wrote %s\n", jsonPath)
	}

	// CI gates. The artifact is written first so a failing run leaves
	// its evidence behind.
	claim := "HOLDS"
	if rep.TotalLECIO > rep.TotalLSCIO {
		claim = "VIOLATED"
	}
	fmt.Fprintf(w, "  claim (fleet aggregate realized LEC <= LSC): %s\n", claim)
	rankClaim := "HOLDS"
	if !rep.RankAgreement {
		rankClaim = "VIOLATED"
	}
	fmt.Fprintf(w, "  claim (per-archetype analytic ranking matches realized ranking): %s\n", rankClaim)
	if rep.Errors != 0 {
		return rep, fmt.Errorf("fleet run had %d errors", rep.Errors)
	}
	if claim == "VIOLATED" {
		return rep, fmt.Errorf("fleet aggregate realized LEC exceeded LSC: %d > %d pages",
			rep.TotalLECIO, rep.TotalLSCIO)
	}
	if rankClaim == "VIOLATED" {
		return rep, fmt.Errorf("fleet rank agreement violated; see %s archetype_stats", jsonPath)
	}
	return rep, nil
}
