package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lecopt"
)

// TestWorkloadModeEmitsArtifact: the workload mode must write a parseable
// BENCH_workload.json that agrees with the returned report, and — the
// ISSUE acceptance claim — show aggregate realized LEC I/O no worse than
// LSC on the default fixed-seed mix.
func TestWorkloadModeEmitsArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_workload.json")
	var out strings.Builder
	rep, err := runWorkloadMode(workloadModeConfig{Requests: 200, Seed: 1}, path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 || rep.TotalLSCIO <= 0 || rep.TotalLECIO <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.TotalLECIO > rep.TotalLSCIO {
		t.Fatalf("acceptance claim violated: realized LEC %d > LSC %d", rep.TotalLECIO, rep.TotalLSCIO)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk lecopt.WorkloadReport
	if err := json.Unmarshal(buf, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.TotalLSCIO != rep.TotalLSCIO || onDisk.TotalLECIO != rep.TotalLECIO ||
		onDisk.Requests != rep.Requests {
		t.Fatalf("artifact mismatch: %+v vs %+v", onDisk, rep)
	}
	for _, want := range []string{"realized I/O", "regret p50/p90/p99", "claim (aggregate realized LEC <= LSC): HOLDS", "claim (per-tenant analytic ranking matches realized ranking): HOLDS", "phase ledger: ", "wrote ", "index-enabled"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
	// The CI smoke gate: rank agreement must hold on every tenant (a nil
	// error from runWorkloadMode already implies it — the run returns an
	// error naming the inverted tenant otherwise — but pin the report
	// fields the gate is derived from, and that the ledger reached disk).
	if !rep.RankAgreement {
		t.Fatal("per-tenant rank agreement false on the default mix")
	}
	for _, ts := range rep.PerTenant {
		if !ts.RankAgreement {
			t.Fatalf("tenant %s: rank inversion (predicted %.4f, realized %.4f)", ts.Name, ts.PredictedRatio, ts.Ratio)
		}
	}
	if len(rep.PhaseLedger) == 0 {
		t.Fatal("report has no phase ledger")
	}
	// The ISSUE acceptance: the artifact's plan dump must show executed
	// index plans (Scan(..., index) nodes).
	if !strings.Contains(string(buf), "index:ix_") {
		t.Fatal("artifact plan dump contains no index-scan nodes")
	}
}

// TestWorkloadModeNoIndex: -noindex reproduces the heap-only mix — no
// index nodes anywhere in the dump, and the LEC claim still holds.
func TestWorkloadModeNoIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_workload.json")
	var out strings.Builder
	rep, err := runWorkloadMode(workloadModeConfig{Requests: 120, Seed: 1, NoIndex: true, NoBands: true}, path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLECIO > rep.TotalLSCIO {
		t.Fatalf("heap-only claim violated: %d > %d", rep.TotalLECIO, rep.TotalLSCIO)
	}
	if !strings.Contains(out.String(), "heap-only (-noindex)") {
		t.Fatalf("summary missing heap-only marker:\n%s", out.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf), "index:") {
		t.Fatal("-noindex artifact contains index-scan nodes")
	}
}

func TestWorkloadModeOverrides(t *testing.T) {
	rep, err := runWorkloadMode(workloadModeConfig{Requests: 60, Seed: 3, Queries: 5, Zipf: 2}, "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 5 {
		t.Fatalf("query override ignored: %d", rep.Queries)
	}
	// Skew 2 concentrates ~70%+ of requests on the hottest few queries, so
	// the exec cache must be warm.
	if rep.ExecCacheHitRate <= 0 {
		t.Fatalf("no exec-cache reuse on a skewed stream: %+v", rep)
	}
}

func TestWorkloadModeBadConfig(t *testing.T) {
	if _, err := runWorkloadMode(workloadModeConfig{Requests: 0}, "", io.Discard); err == nil {
		t.Fatal("zero requests should fail")
	}
}
