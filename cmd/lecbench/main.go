// Command lecbench regenerates the paper-reproduction tables (experiments
// E1-E20 of DESIGN.md) and prints them. EXPERIMENTS.md records one such
// run annotated against the paper's claims. With -workers it instead
// drives a randomized batch-optimization workload through the concurrent
// pipeline and reports throughput (plans/sec, allocs/op, cache hit rate),
// writing the BENCH_batch.json regression artifact.
//
// Usage:
//
//	lecbench                      # run every experiment
//	lecbench -run E1,E5           # selected experiments
//	lecbench -list                # list experiment IDs and titles
//	lecbench -workers=8 -cache    # batch throughput mode
//	lecbench -workers=8 -qps=500  # paced offered load
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lecopt/internal/experiments"
)

func main() {
	var (
		runSpec = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")

		workers   = flag.Int("workers", 0, "batch throughput mode: worker count (0 = experiment mode)")
		requests  = flag.Int("requests", 2000, "throughput mode: total optimization requests")
		distinct  = flag.Int("distinct", 64, "throughput mode: distinct scenarios in the pool")
		useCache  = flag.Bool("cache", false, "throughput mode: memoize plans in an LRU cache")
		cacheSize = flag.Int("cachesize", 4096, "throughput mode: plan-cache capacity")
		qps       = flag.Float64("qps", 0, "throughput mode: offered load limit in plans/sec (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "throughput mode: workload seed")
		alg       = flag.String("alg", "algorithm-c", "throughput mode: optimization algorithm")
		jsonPath  = flag.String("json", "BENCH_batch.json", "throughput mode: perf artifact path (empty = skip)")
	)
	flag.Parse()
	if *workers > 0 {
		if *runSpec != "" || *list {
			fmt.Fprintln(os.Stderr, "lecbench: -run/-list select experiments and cannot be combined with -workers (throughput mode)")
			os.Exit(1)
		}
		cfg := throughputConfig{
			Workers: *workers, Requests: *requests, Distinct: *distinct,
			Cache: *useCache, CacheSize: *cacheSize, QPS: *qps, Seed: *seed, Alg: *alg,
		}
		if _, err := runThroughput(cfg, *jsonPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lecbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*runSpec, *list); err != nil {
		fmt.Fprintln(os.Stderr, "lecbench:", err)
		os.Exit(1)
	}
}

func run(runSpec string, list bool) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []experiments.Experiment
	if runSpec == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(runSpec, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	failures := 0
	for _, e := range selected {
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if !tab.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment claim(s) failed", failures)
	}
	fmt.Printf("all %d experiment claims hold\n", len(selected))
	return nil
}
