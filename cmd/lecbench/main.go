// Command lecbench regenerates the paper-reproduction tables (experiments
// E1-E20 of DESIGN.md) and prints them. EXPERIMENTS.md records one such
// run annotated against the paper's claims.
//
// Usage:
//
//	lecbench            # run everything
//	lecbench -run E1,E5 # selected experiments
//	lecbench -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lecopt/internal/experiments"
)

func main() {
	var (
		runSpec = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if err := run(*runSpec, *list); err != nil {
		fmt.Fprintln(os.Stderr, "lecbench:", err)
		os.Exit(1)
	}
}

func run(runSpec string, list bool) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []experiments.Experiment
	if runSpec == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(runSpec, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	failures := 0
	for _, e := range selected {
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if !tab.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment claim(s) failed", failures)
	}
	fmt.Printf("all %d experiment claims hold\n", len(selected))
	return nil
}
