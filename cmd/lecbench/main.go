// Command lecbench regenerates the paper-reproduction tables (experiments
// E1-E20 of DESIGN.md) and prints them. EXPERIMENTS.md records one such
// run annotated against the paper's claims. With -workers it instead
// drives a randomized batch-optimization workload through the concurrent
// pipeline and reports throughput (plans/sec, allocs/op, cache hit rate),
// writing the BENCH_batch.json regression artifact. With -workload it runs
// the engine-in-the-loop serving simulator — LSC and LEC plans optimized
// per request and *executed* on the page-level engine under sampled memory
// trajectories — writing the BENCH_workload.json realized-I/O artifact.
//
// Usage:
//
//	lecbench                         # run every experiment
//	lecbench -run E1,E5              # selected experiments
//	lecbench -list                   # list experiment IDs and titles
//	lecbench -workers=8 -cache       # batch throughput mode
//	lecbench -workers=8 -qps=500     # paced offered load
//	lecbench -workload -json         # engine-in-the-loop workload mode
//	lecbench -workload -requests=200 # quick smoke of the same
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lecopt/internal/experiments"
)

func main() {
	var (
		runSpec = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")

		workers   = flag.Int("workers", 0, "throughput mode: worker count (0 with -workload: GOMAXPROCS)")
		requests  = flag.Int("requests", 2000, "throughput/workload mode: total requests")
		distinct  = flag.Int("distinct", 64, "throughput mode: distinct scenarios in the pool")
		useCache  = flag.Bool("cache", false, "throughput mode: memoize plans in an LRU cache")
		cacheSize = flag.Int("cachesize", 4096, "throughput/workload mode: plan-cache capacity")
		qps       = flag.Float64("qps", 0, "throughput mode: offered load limit in plans/sec (0 = unlimited)")
		maxAllocs = flag.Float64("maxallocs", 0, "throughput mode: fail when allocs/op exceeds this (0 = no gate) — the CI allocation regression gate")
		seed      = flag.Int64("seed", 1, "throughput/workload mode: workload seed")
		alg       = flag.String("alg", "algorithm-c", "throughput mode: optimization algorithm")

		workloadM = flag.Bool("workload", false, "workload mode: engine-in-the-loop LSC-vs-LEC serving simulation")
		fleetM    = flag.Bool("fleet", false, "fleet mode: Zipf tenant fleet through the resilience layer at each offered load level")
		tenants   = flag.Int("tenants", 0, "fleet mode: tenant count (0 = spec default)")
		queries   = flag.Int("queries", 0, "workload mode: distinct queries in the mix (0 = spec default)")
		zipf      = flag.Float64("zipf", 0, "workload mode: popularity skew (0 = spec default)")
		driftBand = flag.Float64("driftband", 0, "workload mode: plan-cache drift band base (0 = service default, <=1 = exact keys)")
		noBands   = flag.Bool("nobands", false, "workload mode: skip the model-agreement feedback band sweeps")
		noIndex   = flag.Bool("noindex", false, "workload mode: heap-only mix (no physical indexes, no index plans) — reproduces the pre-access-path artifact")

		emitJSON = flag.Bool("json", true, "write the mode's JSON artifact")
		outPath  = flag.String("out", "", "artifact path (default BENCH_batch.json / BENCH_workload.json by mode)")
	)
	flag.Parse()
	artifact := func(def string) string {
		if !*emitJSON {
			return ""
		}
		if *outPath != "" {
			return *outPath
		}
		return def
	}
	switch {
	case *fleetM:
		if *runSpec != "" || *list || *workloadM {
			fmt.Fprintln(os.Stderr, "lecbench: -fleet cannot be combined with -run/-list/-workload")
			os.Exit(1)
		}
		cfg := fleetModeConfig{
			Tenants: *tenants, Requests: *requests, Seed: *seed,
			Workers: *workers, CacheSize: *cacheSize, DriftBand: *driftBand,
		}
		if _, err := runFleetMode(cfg, artifact("BENCH_fleet.json"), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lecbench:", err)
			os.Exit(1)
		}
	case *workloadM:
		if *runSpec != "" || *list {
			fmt.Fprintln(os.Stderr, "lecbench: -run/-list select experiments and cannot be combined with -workload")
			os.Exit(1)
		}
		if *workers < 0 {
			fmt.Fprintln(os.Stderr, "lecbench: -workers must be >= 0 (0 = GOMAXPROCS)")
			os.Exit(1)
		}
		cfg := workloadModeConfig{
			Requests: *requests, Queries: *queries, Zipf: *zipf,
			Seed: *seed, Workers: *workers, CacheSize: *cacheSize,
			DriftBand: *driftBand, NoBands: *noBands, NoIndex: *noIndex,
		}
		if _, err := runWorkloadMode(cfg, artifact("BENCH_workload.json"), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lecbench:", err)
			os.Exit(1)
		}
	case *workers > 0:
		if *runSpec != "" || *list {
			fmt.Fprintln(os.Stderr, "lecbench: -run/-list select experiments and cannot be combined with -workers (throughput mode)")
			os.Exit(1)
		}
		cfg := throughputConfig{
			Workers: *workers, Requests: *requests, Distinct: *distinct,
			Cache: *useCache, CacheSize: *cacheSize, QPS: *qps, Seed: *seed, Alg: *alg,
			MaxAllocs: *maxAllocs,
		}
		if _, err := runThroughput(cfg, artifact("BENCH_batch.json"), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lecbench:", err)
			os.Exit(1)
		}
	default:
		if err := run(*runSpec, *list); err != nil {
			fmt.Fprintln(os.Stderr, "lecbench:", err)
			os.Exit(1)
		}
	}
}

func run(runSpec string, list bool) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []experiments.Experiment
	if runSpec == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(runSpec, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	failures := 0
	for _, e := range selected {
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if !tab.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment claim(s) failed", failures)
	}
	fmt.Printf("all %d experiment claims hold\n", len(selected))
	return nil
}
