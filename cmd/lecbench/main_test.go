package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// E5 is fast and deterministic.
	if err := run("E5", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelectedMultiple(t *testing.T) {
	if err := run("E1, e19", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("E99", false); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func throughputCfg(workers, requests, distinct int, cache bool) throughputConfig {
	return throughputConfig{
		Workers: workers, Requests: requests, Distinct: distinct,
		Cache: cache, CacheSize: 1024, Seed: 7, Alg: "algorithm-c",
	}
}

func TestThroughputModeEmitsArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	var out strings.Builder
	rep, err := runThroughput(throughputCfg(4, 60, 12, true), path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.PlansPerSec <= 0 || rep.AllocsPerOp <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.CacheHits == 0 || rep.CacheHitRate <= 0 {
		t.Fatalf("repeated workload produced no cache hits: %+v", rep)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk throughputReport
	if err := json.Unmarshal(buf, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Workers != 4 || onDisk.Requests != 60 || onDisk.PlansPerSec != rep.PlansPerSec {
		t.Fatalf("artifact mismatch: %+v", onDisk)
	}
	if !strings.Contains(out.String(), "plans/sec") {
		t.Fatalf("summary missing throughput line:\n%s", out.String())
	}
	// The per-request optimize-latency histogram covers every successful
	// request with ordered quantiles.
	h := onDisk.OptimizeLatency
	if h.Count != 60-onDisk.Errors {
		t.Fatalf("latency histogram count %d, want %d", h.Count, 60-onDisk.Errors)
	}
	if h.P50 <= 0 || h.P50 > h.P90 || h.P90 > h.P99 || h.P99 > h.Max {
		t.Fatalf("implausible latency quantiles: %+v", h)
	}
	if !strings.Contains(out.String(), "optimize latency p50/p90/p99/max") {
		t.Fatalf("summary missing latency line:\n%s", out.String())
	}
}

func TestThroughputQPSPacing(t *testing.T) {
	// Two 100ms slices are enough to exercise the pacing path.
	cfg := throughputCfg(2, 20, 4, false)
	cfg.QPS = 100
	rep, err := runThroughput(cfg, "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.ElapsedSeconds < 0.1 {
		t.Fatalf("pacing did not throttle: %+v", rep)
	}
}

func TestThroughputBadConfig(t *testing.T) {
	if _, err := runThroughput(throughputCfg(1, 0, 4, false), "", io.Discard); err == nil {
		t.Fatal("zero requests should fail")
	}
	cfg := throughputCfg(1, 10, 4, false)
	cfg.Alg = "nope"
	if _, err := runThroughput(cfg, "", io.Discard); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

// TestThroughputAllocGate pins the -maxallocs behavior: a generous budget
// passes, an impossible one fails with the gate's error, and the artifact
// is still written on a gate failure so the regression can be diagnosed.
func TestThroughputAllocGate(t *testing.T) {
	cfg := throughputCfg(2, 60, 12, true)
	cfg.MaxAllocs = 1e6
	if _, err := runThroughput(cfg, "", io.Discard); err != nil {
		t.Fatalf("generous gate failed: %v", err)
	}
	cfg.MaxAllocs = 0.001
	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	_, err := runThroughput(cfg, path, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "allocation gate") {
		t.Fatalf("impossible gate did not trip: %v", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("gate failure should still write the artifact: %v", statErr)
	}
}

// TestCommittedArtifactMeetsHotPathTargets gates the committed
// BENCH_batch.json against the PR's acceptance thresholds: no errors, a
// warm hit rate, allocs/op at least 5x below the pre-hot-path 87.91, and
// plans/sec at least 2x above the pre-hot-path 70,937. Regenerate with
//
//	go run ./cmd/lecbench -workers=8 -cache -requests=2000
//
// if a legitimate change moves the numbers. (The figures are from the
// reference machine that commits the artifact; the test reads the file,
// not the current host's speed, so it is stable across machine classes.)
func TestCommittedArtifactMeetsHotPathTargets(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_batch.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep throughputReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("committed artifact has %d errors", rep.Errors)
	}
	if rep.CacheHitRate < 0.9 {
		t.Fatalf("committed hit rate %.3f < 0.9", rep.CacheHitRate)
	}
	if rep.AllocsPerOp > 87.91/5 {
		t.Fatalf("committed allocs/op %.2f misses the 5x target (%.2f)", rep.AllocsPerOp, 87.91/5)
	}
	if rep.PlansPerSec < 2*70937 {
		t.Fatalf("committed plans/sec %.0f misses the 2x target (%d)", rep.PlansPerSec, 2*70937)
	}
}

// TestThroughputCacheSpeedup is the ISSUE acceptance check: the cached
// 8-worker pipeline must deliver at least 3x the plans/sec of the serial
// uncached one on the same repeated workload. On a single-core host the win
// comes almost entirely from the plan cache (repeats dominate the stream),
// which is exactly the serving pattern the cache exists for.
func TestThroughputCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the wall-clock comparison")
	}
	serial, err := runThroughput(throughputCfg(1, 600, 12, false), "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := runThroughput(throughputCfg(8, 600, 12, true), "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic part of the claim: repeats dominate the stream, so
	// nearly every request must be served from the cache (a handful of
	// extra cold-key misses from racing workers is tolerated).
	if cached.CacheHitRate < 0.9 {
		t.Fatalf("hit rate %.2f too low for a 600-request/12-scenario stream", cached.CacheHitRate)
	}
	// The wall-clock part is inherently load-sensitive, so skip it on
	// shared CI runners (GitHub Actions sets CI=true); local and driver
	// runs still enforce the 3x acceptance bar.
	if os.Getenv("CI") != "" {
		t.Skip("wall-clock ratio skipped on shared CI runners")
	}
	ratio := cached.PlansPerSec / serial.PlansPerSec
	if ratio < 3 {
		t.Fatalf("plans/sec speedup %.2fx < 3x (serial %.0f, cached %.0f)",
			ratio, serial.PlansPerSec, cached.PlansPerSec)
	}
}
