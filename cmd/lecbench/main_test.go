package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// E5 is fast and deterministic.
	if err := run("E5", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelectedMultiple(t *testing.T) {
	if err := run("E1, e19", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("E99", false); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}
