//go:build race

package main

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation skews wall-clock comparisons.
const raceEnabled = true
