// Package lecopt is a least-expected-cost (LEC) query optimizer library —
// a from-scratch Go reproduction of "Least Expected Cost Query
// Optimization: An Exercise in Utility" (Chu, Halpern, Seshadri, PODS
// 1999).
//
// Classical System R optimizers cost plans at a single point estimate of
// each run-time parameter (the least-specific-cost, LSC, plan). This
// library instead models parameters — available buffer memory, relation
// sizes, predicate selectivities — as probability distributions and finds
// the plan of least expected cost. It implements all four of the paper's
// algorithms (A, B, C, D), the dynamic-memory Markov extension, the
// linear-time expected-cost formulas of Section 3.6, the bucketing
// strategies of Section 3.7, plus every substrate they need: a catalog
// with histograms, a mini SQL parser, the System R baseline, an analytic
// cost model, and a page-level execution engine with a buffer pool that
// validates the model's shape.
//
// Quick start (the paper's Example 1.1):
//
//	mem, _ := lecopt.Bimodal(700, 2000, 0.2) // pages: 700 w.p. 0.2, 2000 w.p. 0.8
//	sc := &lecopt.Scenario{Cat: cat, Query: blk, Env: lecopt.Env{Mem: mem}}
//	classical, _ := sc.Optimize(lecopt.AlgLSCMode) // picks sort-merge
//	lec, _ := sc.Optimize(lecopt.AlgC)             // picks grace-hash + sort
//	fmt.Println(lec.EC < classical.EC)             // true
//
// # Batch & concurrent use
//
// Optimizations are independent, so heavy workloads should go through
// OptimizeBatch, which fans a worker pool across many scenarios and can
// memoize repeated queries in a plan cache:
//
//	cache := lecopt.NewPlanCache(4096)
//	jobs := make([]lecopt.BatchJob, len(scenarios))
//	for i, sc := range scenarios {
//		jobs[i] = lecopt.BatchJob{Scenario: sc, Alg: lecopt.AlgC}
//	}
//	results := lecopt.OptimizeBatch(jobs, lecopt.BatchOptions{Workers: 8, Cache: cache})
//	for i, r := range results { // results[i] answers jobs[i]
//		if r.Err == nil {
//			fmt.Println(r.Report.Plan, r.Report.EC, r.CacheHit)
//		}
//	}
//	fmt.Println(cache.Stats().HitRate())
//
// Results are byte-identical to sequential Scenario.Optimize calls: worker
// count only changes wall-clock time, never plans. Cache keys cover the
// catalog fingerprint, canonical query shape, environment-law digest,
// plan-space options and algorithm, so any statistics or law change misses
// cleanly and stale entries age out of the LRU — there is no explicit
// invalidation to call. Cached reports share plan trees; treat returned
// plans as immutable (Clone before mutating). Inside Algorithms A and B the
// per-memory-bucket LSC runs are themselves parallelized; tune with
// Options.Workers.
//
// # Empirical validation
//
// Analytic expected-cost comparisons are only as good as the cost model,
// so the library ships an engine-in-the-loop workload simulator: it
// generates a serving mix (Zipf query popularity, multi-tenant Markov
// memory regimes, correlated statistics drift), optimizes every request
// with both the classical LSC policy and an LEC algorithm, then actually
// executes both plans on the page-level engine under shared sampled memory
// trajectories and compares *measured* physical I/O:
//
//	spec, _ := lecopt.DefaultWorkloadSpec()
//	rep, _ := lecopt.RunWorkload(spec, lecopt.WorkloadRun{Requests: 1000, Seed: 1})
//	fmt.Println(rep.RealizedRatio <= 1) // LEC realized no more I/O than LSC
//
// The same report is produced by `lecbench -workload` as the
// BENCH_workload.json artifact; see the README's "Empirical validation"
// section for how to read it.
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package lecopt

import (
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/plancache"
	"lecopt/internal/query"
	"lecopt/internal/sqlmini"
	"lecopt/internal/workload/serving"
)

// Re-exported core types. The aliases give external importers a stable
// public surface over the internal packages.
type (
	// Scenario bundles a catalog, a query and an uncertainty model.
	Scenario = core.Scenario
	// PlanReport is the outcome of one optimization.
	PlanReport = core.PlanReport
	// Algorithm selects an optimization strategy.
	Algorithm = core.Algorithm
	// Env is an execution environment: a memory law plus an optional
	// Markov chain for dynamic (per-phase) memory.
	Env = envsim.Env
	// Dist is a discrete probability distribution over parameter values.
	Dist = dist.Dist
	// Chain is a Markov chain over memory levels (Section 3.5).
	Chain = dist.Chain
	// Catalog stores table, column and index statistics.
	Catalog = catalog.Catalog
	// Table describes one stored relation.
	Table = catalog.Table
	// Column describes one attribute with statistics.
	Column = catalog.Column
	// Index describes a secondary index.
	Index = catalog.Index
	// Block is an SPJ query block.
	Block = query.Block
	// Plan is a physical plan tree node.
	Plan = plan.Node
	// Options tunes the optimizer's plan space.
	Options = optimizer.Options
	// BatchJob is one unit of work for OptimizeBatch.
	BatchJob = core.BatchJob
	// BatchResult is the outcome of one BatchJob.
	BatchResult = core.BatchResult
	// BatchOptions tunes OptimizeBatch (worker count, plan cache).
	BatchOptions = core.BatchOptions
	// PlanCache memoizes PlanReports across repeated queries.
	PlanCache = plancache.Cache[core.PlanReport]
	// CacheStats snapshots a PlanCache's hit/miss counters.
	CacheStats = plancache.Stats
	// WorkloadSpec configures serving-mix generation for RunWorkload.
	WorkloadSpec = serving.MixSpec
	// WorkloadTenant is one memory regime of a serving mix.
	WorkloadTenant = serving.Tenant
	// WorkloadRun tunes one engine-in-the-loop Monte-Carlo run.
	WorkloadRun = serving.RunConfig
	// WorkloadReport compares the realized I/O of the LSC and LEC
	// policies over one simulated request stream.
	WorkloadReport = serving.Report
)

// Algorithms.
const (
	AlgLSCMean = core.AlgLSCMean // classical plan at the mean memory
	AlgLSCMode = core.AlgLSCMode // classical plan at the modal memory
	AlgA       = core.AlgA       // §3.2 black-box, one LSC run per bucket
	AlgB       = core.AlgB       // §3.3 top-c candidates per bucket
	AlgC       = core.AlgC       // §3.4/§3.5 LEC dynamic program
	AlgD       = core.AlgD       // §3.6 multi-parameter LEC
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm { return append([]Algorithm(nil), core.Algorithms...) }

// NewCatalog returns an empty statistics catalog.
func NewCatalog() *Catalog { return catalog.New() }

// NewTable builds a table with validated statistics.
func NewTable(name string, pages, rows float64, cols ...Column) (*Table, error) {
	return catalog.NewTable(name, pages, rows, cols...)
}

// ParseSQL parses a small SQL subset ("SELECT * FROM a, b WHERE a.k = b.k
// AND a.v < 10 ORDER BY a.k") into a query block and validates it against
// the catalog.
func ParseSQL(sql string, cat *Catalog) (*Block, error) {
	return sqlmini.ParseAndValidate(sql, cat)
}

// NewDist builds a distribution from values and (unnormalized) weights.
func NewDist(vals, weights []float64) (Dist, error) { return dist.New(vals, weights) }

// PointDist is the degenerate one-value law; it makes every LEC algorithm
// coincide with the classical LSC optimizer.
func PointDist(v float64) Dist { return dist.Point(v) }

// Bimodal returns a two-point law: lo with probability pLo, hi otherwise.
func Bimodal(lo, hi, pLo float64) (Dist, error) { return dist.Bimodal(lo, hi, pLo) }

// StickyChain returns a Markov chain that stays put with probability stay
// and otherwise drifts to a neighbouring level.
func StickyChain(levels []float64, stay float64) (*Chain, error) {
	return dist.Sticky(levels, stay)
}

// ExpectedCost evaluates a plan under per-phase memory laws.
func ExpectedCost(p *Plan, laws []Dist) (float64, error) {
	return optimizer.ExpectedCost(p, laws)
}

// EdgeKey canonically names a join edge for Scenario.SelLaws.
func EdgeKey(j query.Join) string { return optimizer.EdgeKey(j) }

// OptimizeBatch optimizes every job across a worker pool and returns the
// results in job order; see the "Batch & concurrent use" package section.
func OptimizeBatch(jobs []BatchJob, opts BatchOptions) []BatchResult {
	return core.OptimizeBatch(jobs, opts)
}

// NewPlanCache returns a concurrency-safe LRU plan cache holding at most
// capacity memoized PlanReports, for use with BatchOptions.Cache.
func NewPlanCache(capacity int) *PlanCache {
	return plancache.New[core.PlanReport](capacity)
}

// DefaultWorkloadSpec returns the canonical Zipf+Markov serving mix: 12
// distinct queries with skew 1.1, four tenant memory regimes (batch,
// interactive, sticky-Markov, volatile-Markov) and a ±2x sticky drift of
// the optimizer's statistics.
func DefaultWorkloadSpec() (WorkloadSpec, error) { return serving.DefaultMixSpec() }

// RunWorkload generates a serving mix from spec (mix generation and the
// run stream are both seeded by cfg.Seed, so a report is reproducible from
// its spec+config) and Monte-Carlo-runs it engine-in-the-loop: every
// request is optimized with both policies through the batch pipeline, both
// plans are executed on the page-level engine under one shared sampled
// memory trajectory, and the realized physical I/O is aggregated into the
// report; see the package section "Empirical validation".
func RunWorkload(spec WorkloadSpec, cfg WorkloadRun) (*WorkloadReport, error) {
	mix, err := serving.NewMix(spec, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	return mix.Run(cfg)
}
