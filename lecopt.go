// Package lecopt is a least-expected-cost (LEC) query optimizer library —
// a from-scratch Go reproduction of "Least Expected Cost Query
// Optimization: An Exercise in Utility" (Chu, Halpern, Seshadri, PODS
// 1999).
//
// Classical System R optimizers cost plans at a single point estimate of
// each run-time parameter (the least-specific-cost, LSC, plan). This
// library instead models parameters — available buffer memory, relation
// sizes, predicate selectivities — as probability distributions and finds
// the plan of least expected cost. It implements all four of the paper's
// algorithms (A, B, C, D), the dynamic-memory Markov extension, the
// linear-time expected-cost formulas of Section 3.6, the bucketing
// strategies of Section 3.7, plus every substrate they need: a catalog
// with histograms, a mini SQL parser, the System R baseline, an analytic
// cost model, and a page-level execution engine with a buffer pool that
// validates the model's shape.
//
// # The Optimizer service handle
//
// The primary API is a long-lived, concurrency-safe service handle built
// with New. The handle owns everything a serving fleet needs to keep
// *across* requests: the plan cache, the worker pool, prepared statements
// with their [INSS92]-style parametric plan sets, and the executed-size
// feedback store. Quick start (the paper's Example 1.1):
//
//	opt := lecopt.New(cat)
//	prep, _ := opt.Prepare("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k")
//	mem, _ := lecopt.Bimodal(700, 2000, 0.2) // pages: 700 w.p. 0.2, 2000 w.p. 0.8
//	env := lecopt.Env{Mem: mem}
//	classical, _ := prep.Optimize(env, lecopt.AlgLSCMode) // picks sort-merge
//	lec, _ := prep.Optimize(env, lecopt.AlgC)             // picks grace-hash + sort
//	fmt.Println(lec.EC < classical.EC)                    // true
//
// One-shot requests skip Prepare: Optimize takes SQL, a pre-built Block,
// or a Prepared statement, plus a per-request catalog override for
// multi-tenant or drifted statistics:
//
//	resp, _ := opt.Optimize(lecopt.Request{SQL: "...", Env: env, Alg: lecopt.AlgC})
//
// # Batch & concurrent use
//
// Heavy workloads go through Optimizer.OptimizeBatch, which fans the
// handle's worker pool across many requests and serves repeats from the
// plan cache:
//
//	opt := lecopt.New(nil, lecopt.WithWorkers(8))
//	resps := opt.OptimizeBatch(reqs) // resps[i] answers reqs[i]
//	for _, r := range resps {
//		if r.Err == nil {
//			fmt.Println(r.Plan, r.EC, r.CacheHit)
//		}
//	}
//	fmt.Println(opt.CacheStats().HitRate())
//
// Results are byte-identical to sequential Optimize calls and independent
// of the worker count. Requests sharing a cache key are deduplicated
// deterministically (first request in order computes, the rest hit).
// Cached reports share plan trees; treat returned plans as immutable
// (Clone before mutating). Inside Algorithms A and B the per-memory-bucket
// LSC runs are themselves parallelized; tune with Options.Workers.
//
// # Drift-banded plan caching
//
// Cache keys cover the catalog fingerprint, canonical query shape,
// environment-law digest, plan-space options, feedback hints and
// algorithm. By default the catalog fingerprint is *drift-banded*:
// distinct counts are bucketed into geometric factor-2 bands, so a tenant
// whose statistics drift within a band keeps hitting its cached plans
// (exact-fingerprint keys split every drift step into its own entry; opt
// in to them with WithExactCacheKeys). Cross-band drift — a real
// statistics change — misses cleanly, and stale entries age out of the
// LRU; there is no explicit invalidation to call.
//
// # Executed-size feedback
//
// The cost model's weakest input is the estimated intermediate-result
// size (nested-loop joins square the error). The engine reports every
// join's materialized output pages (ExecResult.JoinSizes); feed them back
// with Observe and subsequent optimizations of the same query cost with
// the observed sizes:
//
//	res, _ := eng.ExecutePlan(resp.Plan, memSeq)
//	opt.Observe(lecopt.Feedback{Prepared: prep, Sizes: res.JoinSizes})
//
// # Empirical validation
//
// Analytic expected-cost comparisons are only as good as the cost model,
// so the library ships an engine-in-the-loop workload simulator: it
// generates a serving mix (Zipf query popularity, multi-tenant Markov
// memory regimes, correlated statistics drift), optimizes every request
// with both the classical LSC policy and an LEC algorithm, then actually
// executes both plans on the page-level engine under shared sampled memory
// trajectories and compares *measured* physical I/O:
//
//	spec, _ := lecopt.DefaultWorkloadSpec()
//	rep, _ := lecopt.RunWorkload(spec, lecopt.WorkloadRun{Requests: 1000, Seed: 1})
//	fmt.Println(rep.RealizedRatio <= 1) // LEC realized no more I/O than LSC
//
// The same report is produced by `lecbench -workload` as the
// BENCH_workload.json artifact (including the model-agreement bands with
// feedback off and on); see the README's "Empirical validation" section
// for how to read it.
//
// # Migrating from the free functions
//
// The pre-handle surface (Scenario.Optimize, OptimizeBatch, NewPlanCache)
// still works and now delegates to the service; see the README's
// "Migrating from the free functions" table for the old-to-new mapping.
//
// See the examples/ directory for runnable programs, DESIGN.md for the
// architecture and plan-space conventions, and EXPERIMENTS.md for the
// E1-E20 reproduction methodology.
package lecopt

import (
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/plancache"
	"lecopt/internal/query"
	"lecopt/internal/sqlmini"
	"lecopt/internal/workload/fleet"
	"lecopt/internal/workload/serving"
)

// Re-exported core types. The aliases give external importers a stable
// public surface over the internal packages.
type (
	// Scenario bundles a catalog, a query and an uncertainty model.
	Scenario = core.Scenario
	// PlanReport is the outcome of one optimization.
	PlanReport = core.PlanReport
	// Algorithm selects an optimization strategy.
	Algorithm = core.Algorithm
	// Env is an execution environment: a memory law plus an optional
	// Markov chain for dynamic (per-phase) memory.
	Env = envsim.Env
	// Dist is a discrete probability distribution over parameter values.
	Dist = dist.Dist
	// Chain is a Markov chain over memory levels (Section 3.5).
	Chain = dist.Chain
	// Catalog stores table, column and index statistics.
	Catalog = catalog.Catalog
	// Table describes one stored relation.
	Table = catalog.Table
	// Column describes one attribute with statistics.
	Column = catalog.Column
	// Index describes a secondary index.
	Index = catalog.Index
	// Block is an SPJ query block.
	Block = query.Block
	// Plan is a physical plan tree node.
	Plan = plan.Node
	// Options tunes the optimizer's plan space.
	Options = optimizer.Options
	// BatchJob is one unit of work for OptimizeBatch.
	//
	// Deprecated: build Requests for an Optimizer handle instead.
	BatchJob = core.BatchJob
	// BatchResult is the outcome of one BatchJob.
	//
	// Deprecated: the handle's OptimizeBatch returns Responses.
	BatchResult = core.BatchResult
	// BatchOptions tunes OptimizeBatch (worker count, plan cache).
	//
	// Deprecated: configure the handle with WithWorkers / WithPlanCache.
	BatchOptions = core.BatchOptions
	// PlanCache memoizes PlanReports across repeated queries.
	PlanCache = plancache.Cache[core.PlanReport]
	// CacheStats snapshots a PlanCache's hit/miss counters.
	CacheStats = plancache.Stats
	// WorkloadSpec configures serving-mix generation for RunWorkload.
	WorkloadSpec = serving.MixSpec
	// WorkloadTenant is one memory regime of a serving mix.
	WorkloadTenant = serving.Tenant
	// WorkloadRun tunes one engine-in-the-loop Monte-Carlo run.
	WorkloadRun = serving.RunConfig
	// WorkloadReport compares the realized I/O of the LSC and LEC
	// policies over one simulated request stream.
	WorkloadReport = serving.Report
	// FleetSpec configures fleet-scale generation for RunFleet: Zipf
	// tenant traffic shares, shared-catalog groups, engineered
	// high-churn tenants and the resilience-layer policies.
	FleetSpec = fleet.Spec
	// FleetRun tunes one fleet run (stream length, seed, policies).
	FleetRun = fleet.RunConfig
	// FleetReport is the BENCH_fleet.json artifact: per-load-level
	// realized I/O, optimize-latency histograms and resilience counters.
	FleetReport = fleet.Report
)

// Algorithms.
const (
	AlgLSCMean = core.AlgLSCMean // classical plan at the mean memory
	AlgLSCMode = core.AlgLSCMode // classical plan at the modal memory
	AlgA       = core.AlgA       // §3.2 black-box, one LSC run per bucket
	AlgB       = core.AlgB       // §3.3 top-c candidates per bucket
	AlgC       = core.AlgC       // §3.4/§3.5 LEC dynamic program
	AlgD       = core.AlgD       // §3.6 multi-parameter LEC
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm { return append([]Algorithm(nil), core.Algorithms...) }

// NewCatalog returns an empty statistics catalog.
func NewCatalog() *Catalog { return catalog.New() }

// NewTable builds a table with validated statistics.
func NewTable(name string, pages, rows float64, cols ...Column) (*Table, error) {
	return catalog.NewTable(name, pages, rows, cols...)
}

// ParseSQL parses a small SQL subset ("SELECT * FROM a, b WHERE a.k = b.k
// AND a.v < 10 ORDER BY a.k") into a query block and validates it against
// the catalog.
func ParseSQL(sql string, cat *Catalog) (*Block, error) {
	return sqlmini.ParseAndValidate(sql, cat)
}

// NewDist builds a distribution from values and (unnormalized) weights.
func NewDist(vals, weights []float64) (Dist, error) { return dist.New(vals, weights) }

// PointDist is the degenerate one-value law; it makes every LEC algorithm
// coincide with the classical LSC optimizer.
func PointDist(v float64) Dist { return dist.Point(v) }

// Bimodal returns a two-point law: lo with probability pLo, hi otherwise.
func Bimodal(lo, hi, pLo float64) (Dist, error) { return dist.Bimodal(lo, hi, pLo) }

// StickyChain returns a Markov chain that stays put with probability stay
// and otherwise drifts to a neighbouring level.
func StickyChain(levels []float64, stay float64) (*Chain, error) {
	return dist.Sticky(levels, stay)
}

// ExpectedCost evaluates a plan under per-phase memory laws.
func ExpectedCost(p *Plan, laws []Dist) (float64, error) {
	return optimizer.ExpectedCost(p, laws)
}

// EdgeKey canonically names a join edge for Scenario.SelLaws.
func EdgeKey(j query.Join) string { return optimizer.EdgeKey(j) }

// OptimizeBatch optimizes every job across a worker pool and returns the
// results in job order; see the "Batch & concurrent use" package section.
//
// Deprecated: OptimizeBatch delegates to an ephemeral Optimizer handle
// with exact cache keys on every call. Hold a long-lived handle instead —
// New(...).OptimizeBatch — which adds drift-banded caching, prepared
// statements and executed-size feedback.
func OptimizeBatch(jobs []BatchJob, opts BatchOptions) []BatchResult {
	return core.OptimizeBatch(jobs, opts)
}

// NewPlanCache returns a concurrency-safe LRU plan cache holding at most
// capacity memoized PlanReports, for use with BatchOptions.Cache or
// WithSharedCache (sharing one cache across handles).
func NewPlanCache(capacity int) *PlanCache {
	return plancache.New[core.PlanReport](capacity)
}

// DefaultWorkloadSpec returns the canonical Zipf+Markov serving mix: 12
// distinct queries with skew 1.1, four tenant memory regimes (batch,
// interactive, sticky-Markov, volatile-Markov) and a ±2x sticky drift of
// the optimizer's statistics.
func DefaultWorkloadSpec() (WorkloadSpec, error) { return serving.DefaultMixSpec() }

// RunWorkload generates a serving mix from spec (mix generation and the
// run stream are both seeded by cfg.Seed, so a report is reproducible from
// its spec+config) and Monte-Carlo-runs it engine-in-the-loop: every
// request is optimized with both policies through the batch pipeline, both
// plans are executed on the page-level engine under one shared sampled
// memory trajectory, and the realized physical I/O is aggregated into the
// report; see the package section "Empirical validation".
func RunWorkload(spec WorkloadSpec, cfg WorkloadRun) (*WorkloadReport, error) {
	mix, err := serving.NewMix(spec, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	return mix.Run(cfg)
}

// DefaultFleetSpec returns the canonical fleet: 512 tenants with Zipf-1.1
// traffic shares over four shared-catalog groups, four engineered
// high-churn tenants pinned to a band-crossing drift group, two offered
// load levels, and the default resilience policies (budgets, breaker,
// hedging).
func DefaultFleetSpec() (FleetSpec, error) { return fleet.DefaultSpec() }

// RunFleet generates a tenant fleet from spec (generation and the request
// stream are both seeded by cfg.Seed) and replays one shared request
// stream at each of the spec's offered load levels through the resilience
// wrapper: per-tenant optimization budgets, hedged re-optimization,
// drift-churn circuit breakers, and a per-request timeline — all in
// deterministic virtual time, so the report is byte-identical run to run
// and across worker counts.
func RunFleet(spec FleetSpec, cfg FleetRun) (*FleetReport, error) {
	f, err := fleet.New(spec, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	return f.Run(cfg)
}
