package lecopt

import (
	"math/rand"

	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/feedback"
	"lecopt/internal/parametric"
	"lecopt/internal/workload/serving"
)

// Service types: the stateful Optimizer handle and its request surface.
type (
	// Optimizer is a concurrency-safe, long-lived optimization service:
	// it owns the plan cache, the worker pool, the prepared statements
	// with their parametric plan sets, and the executed-size feedback
	// store. Build one with New; it is the primary public API.
	Optimizer = core.Optimizer
	// Request is one optimization request against an Optimizer.
	Request = core.Request
	// Response is the outcome of one Request (PlanReport embedded).
	Response = core.Response
	// Prepared is a prepared statement: parsed and canonicalized once,
	// with [INSS92]-style parametric plan sets over the memory and drift
	// axes.
	Prepared = core.Prepared
	// Feedback carries executed intermediate-result sizes back to an
	// Optimizer (engine ExecResult.JoinSizes keyed by SizeKey).
	Feedback = core.Feedback
	// ParametricEntry is one precomputed (anticipated law, plan) pair of
	// a Prepared statement's plan set.
	ParametricEntry = parametric.Entry
	// TournamentResult is a realized-cost comparison over common random
	// numbers.
	TournamentResult = envsim.TournamentResult
	// RunStats summarizes one plan's simulated realized costs.
	RunStats = envsim.RunStats
	// AgreementConfig tunes one engine-vs-model agreement sweep.
	AgreementConfig = serving.AgreementConfig
	// AgreementReport pins the measured/model bands of one sweep.
	AgreementReport = serving.AgreementReport
)

// Option configures an Optimizer handle built by New.
type Option func(*core.Config)

// WithWorkers bounds batch-optimization concurrency (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = n }
}

// WithPlanCache sets the handle's plan-cache capacity (the default is
// core.DefaultCacheSize entries).
func WithPlanCache(capacity int) Option {
	return func(c *core.Config) { c.CacheSize = capacity; c.Cache = nil }
}

// WithSharedCache makes the handle use an existing cache — share one
// across handles for a fleet-wide plan cache.
func WithSharedCache(cache *PlanCache) Option {
	return func(c *core.Config) { c.Cache = cache }
}

// WithoutPlanCache disables plan caching entirely.
func WithoutPlanCache() Option {
	return func(c *core.Config) { c.CacheSize = -1; c.Cache = nil }
}

// WithDriftBand sets the geometric band base for drift-banded plan-cache
// keys: catalogs whose distinct counts drift within a factor-base band
// keep hitting the same cached plan. The default is base 2.
func WithDriftBand(base float64) Option {
	return func(c *core.Config) { c.DriftBand = base }
}

// WithExactCacheKeys restores exact-fingerprint cache keys: any
// statistics change, however small, misses.
func WithExactCacheKeys() Option {
	return func(c *core.Config) { c.DriftBand = -1 }
}

// WithPlanSpace sets the default plan-space options applied to requests
// that carry none.
func WithPlanSpace(opts Options) Option {
	return func(c *core.Config) { c.PlanSpace = opts }
}

// WithTopC sets the default Algorithm B candidate-list depth.
func WithTopC(topC int) Option {
	return func(c *core.Config) { c.TopC = topC }
}

// WithoutFeedback disables the executed-size feedback store: Observe
// becomes a no-op and no observed sizes flow into costing.
func WithoutFeedback() Option {
	return func(c *core.Config) { c.DisableFeedback = true }
}

// WithFeedbackAlpha sets the EWMA weight of each observed size (the
// default is feedback.DefaultAlpha).
func WithFeedbackAlpha(alpha float64) Option {
	return func(c *core.Config) { c.FeedbackAlpha = alpha }
}

// WithAnticipatedLaws sets Prepare's memory axis: the [INSS92] family of
// anticipated memory laws each prepared statement precomputes LEC plans
// for. Without it Prepare skips plan-set precomputation and
// Prepared.Select falls back to full cached optimization.
func WithAnticipatedLaws(laws ...Dist) Option {
	return func(c *core.Config) { c.AnticipatedLaws = append([]dist.Dist(nil), laws...) }
}

// WithDriftFactors sets Prepare's drift axis: one plan set is precomputed
// per anticipated statistics-drift factor (the default is {1}).
func WithDriftFactors(factors ...float64) Option {
	return func(c *core.Config) { c.DriftFactors = append([]float64(nil), factors...) }
}

// New builds a long-lived Optimizer service handle over cat. cat may be
// nil when every Request supplies its own catalog (multi-tenant servers);
// Prepare and SQL-carrying requests then need Request.Cat.
//
//	opt := lecopt.New(cat)
//	prep, _ := opt.Prepare("SELECT * FROM A, B WHERE A.k = B.k")
//	resp, _ := opt.Optimize(lecopt.Request{Prepared: prep, Env: env, Alg: lecopt.AlgC})
func New(cat *Catalog, opts ...Option) *Optimizer {
	cfg := core.Config{}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewOptimizer(cat, cfg)
}

// SizeKey canonically names a set of joined tables for Feedback.Sizes and
// Options.SizeHints — the engine's ExecResult.JoinSizes uses the same
// vocabulary, so observed sizes can be fed back verbatim.
func SizeKey(tables ...string) string { return feedback.SetKey(tables...) }

// MeasureModelAgreement generates the serving mix from spec (seeded by
// cfg.Seed, like RunWorkload) and sweeps the engine-vs-model agreement
// corpus over it, optionally closing the executed-size feedback loop; see
// the serving report's band semantics. Running it twice — feedback off,
// then on — quantifies how much observed intermediate sizes tighten the
// cost model's nested-loop band.
func MeasureModelAgreement(spec WorkloadSpec, cfg AgreementConfig) (*AgreementReport, error) {
	mix, err := serving.NewMix(spec, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	return mix.MeasureModelAgreement(cfg)
}

// CoverageGrid builds a family of anticipated bimodal memory laws spanning
// low-memory probabilities pLows at the given arms — the "good coverage"
// family the paper suggests for contended/uncontended environments; use it
// with WithAnticipatedLaws.
func CoverageGrid(lo, hi float64, pLows []float64) ([]Dist, error) {
	return parametric.CoverageGrid(lo, hi, pLows)
}
