// Differential test harness: ~200 seeded random small scenarios checked
// against ground truth from three independent angles —
//
//  1. Algorithm C's plan expected cost equals the exhaustive left-deep
//     enumerator's (Theorems 3.3/3.4 hold on every random instance, not
//     just the hand-picked paper examples);
//  2. the LEC plan is never worse in expectation than either classical
//     LSC baseline (the paper's core utility claim);
//  3. the concurrent batch pipeline returns byte-identical PlanReports to
//     the sequential path, with and without the plan cache (concurrency
//     correctness is proven, not asserted).
package lecopt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

const diffScenarios = 200

// diffScenario builds the i-th corpus scenario: 2-4 tables (small enough
// for the exhaustive oracle), mixed shapes, cycling the standard
// environment suite. Same i ⇒ same scenario, run after run.
func diffScenario(t testing.TB, i int, envs []workload.NamedEnv) *Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(7000 + i)))
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random}
	spec := workload.DefaultSpec(2+i%3, shapes[i%len(shapes)])
	sc, err := workload.Generate(spec, rng)
	if err != nil {
		t.Fatalf("scenario %d: %v", i, err)
	}
	return &Scenario{Cat: sc.Cat, Query: sc.Block, Env: envs[i%len(envs)].Env}
}

func diffCorpus(t testing.TB) []*Scenario {
	t.Helper()
	envs, err := workload.StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Scenario, diffScenarios)
	for i := range out {
		out[i] = diffScenario(t, i, envs)
	}
	return out
}

// relClose reports a ≈ b within relative tolerance (absolute near zero).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d/scale <= tol
}

// TestDifferentialAlgCMatchesExhaustive checks Algorithm C against the
// brute-force oracle on every corpus scenario.
func TestDifferentialAlgCMatchesExhaustive(t *testing.T) {
	for i, sc := range diffCorpus(t) {
		lec, err := sc.Optimize(AlgC)
		if err != nil {
			t.Fatalf("scenario %d: AlgC: %v", i, err)
		}
		laws, err := optimizer.PhaseLawsFor(len(sc.Query.Tables), sc.Env.Mem, sc.Env.Chain)
		if err != nil {
			t.Fatalf("scenario %d: laws: %v", i, err)
		}
		oracle, err := optimizer.ExhaustiveLEC(sc.Cat, sc.Query, sc.Opts, laws)
		if err != nil {
			t.Fatalf("scenario %d: oracle: %v", i, err)
		}
		if !relClose(lec.EC, oracle.EC, 1e-9) {
			t.Errorf("scenario %d: AlgC EC %v != exhaustive EC %v\nAlgC plan: %s\noracle:    %s",
				i, lec.EC, oracle.EC, lec.Plan.Signature(), oracle.Plan.Signature())
		}
	}
}

// TestDifferentialLECNeverWorseThanLSC checks the paper's utility claim on
// every corpus scenario: under the common expected-cost yardstick the LEC
// plan beats or ties both classical baselines.
func TestDifferentialLECNeverWorseThanLSC(t *testing.T) {
	const slack = 1e-9 // float-summation noise only; LEC optimality is exact
	for i, sc := range diffCorpus(t) {
		lec, err := sc.Optimize(AlgC)
		if err != nil {
			t.Fatalf("scenario %d: AlgC: %v", i, err)
		}
		for _, baseline := range []Algorithm{AlgLSCMean, AlgLSCMode} {
			lsc, err := sc.Optimize(baseline)
			if err != nil {
				t.Fatalf("scenario %d: %s: %v", i, baseline, err)
			}
			if lec.EC > lsc.EC*(1+slack)+slack {
				t.Errorf("scenario %d: LEC EC %v > %s EC %v", i, lec.EC, baseline, lsc.EC)
			}
		}
	}
}

// batchReportKey renders every PlanReport field, so equal keys mean the
// batch pipeline reproduced the sequential answer exactly.
func batchReportKey(r PlanReport) string {
	return fmt.Sprintf("%s|%s|%v|%v|%d|%d",
		r.Algorithm, r.Plan.Signature(), r.Score, r.EC, r.Candidates, r.Probes)
}

// TestDifferentialBatchMatchesSequential runs the whole corpus through
// OptimizeBatch with 8 workers — cold, cache-cold, and cache-warm — and
// requires byte-identical reports to the sequential path each time.
func TestDifferentialBatchMatchesSequential(t *testing.T) {
	corpus := diffCorpus(t)
	jobs := make([]BatchJob, len(corpus))
	want := make([]string, len(corpus))
	for i, sc := range corpus {
		jobs[i] = BatchJob{Scenario: sc, Alg: AlgC}
		rep, err := sc.Optimize(AlgC)
		if err != nil {
			t.Fatalf("scenario %d: sequential: %v", i, err)
		}
		want[i] = batchReportKey(rep)
	}
	check := func(label string, results []BatchResult) {
		t.Helper()
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: scenario %d: %v", label, i, r.Err)
			}
			if got := batchReportKey(r.Report); got != want[i] {
				t.Errorf("%s: scenario %d:\n got %s\nwant %s", label, i, got, want[i])
			}
		}
	}
	check("no-cache", OptimizeBatch(jobs, BatchOptions{Workers: 8}))
	cache := NewPlanCache(1024)
	check("cache-cold", OptimizeBatch(jobs, BatchOptions{Workers: 8, Cache: cache}))
	warm := OptimizeBatch(jobs, BatchOptions{Workers: 8, Cache: cache})
	check("cache-warm", warm)
	hits := 0
	for _, r := range warm {
		if r.CacheHit {
			hits++
		}
	}
	if hits != len(jobs) {
		t.Errorf("warm pass: %d/%d cache hits", hits, len(jobs))
	}
}

// TestDifferentialPhaseECContract pins the phase-count contract across the
// whole corpus: every algorithm's report carries exactly one analytic
// charge per execution phase of its plan (the same count the engine uses
// for ExecResult.PhaseIO — both sides are defined by plan.Phases()), every
// entry is finite and non-negative, and for the memory-only algorithms the
// entries sum back to the minimized score. A drifting phase index — the
// bug class behind the dynamic-memory rank inversion — breaks one of
// these on some corpus shape.
func TestDifferentialPhaseECContract(t *testing.T) {
	algs := []Algorithm{AlgLSCMean, AlgLSCMode, AlgA, AlgB, AlgC}
	for i, sc := range diffCorpus(t) {
		for _, alg := range algs {
			rep, err := sc.Optimize(alg)
			if err != nil {
				t.Fatalf("scenario %d: %s: %v", i, alg, err)
			}
			phases := rep.Plan.Phases()
			if len(rep.PhaseEC) != phases {
				t.Fatalf("scenario %d: %s: %d phase charges for a %d-phase plan (%s)",
					i, alg, len(rep.PhaseEC), phases, rep.Plan.Signature())
			}
			var sum float64
			for pi, v := range rep.PhaseEC {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("scenario %d: %s: PhaseEC[%d]=%v", i, alg, pi, v)
				}
				sum += v
			}
			if !relClose(sum, rep.Score, 1e-9) {
				t.Errorf("scenario %d: %s: sum(PhaseEC)=%v != Score=%v (plan %s)",
					i, alg, sum, rep.Score, rep.Plan.Signature())
			}
		}
	}
}
