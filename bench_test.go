// Benchmarks: one per reproduced experiment (see DESIGN.md §4 and
// EXPERIMENTS.md). Each BenchmarkE* target regenerates the corresponding
// table/figure artifact of Chu, Halpern, Seshadri (PODS 1999); run
//
//	go test -bench=. -benchmem
//
// to reproduce the full evaluation. Additional micro-benchmarks cover the
// primitives whose asymptotics the paper analyses (Prop 3.1 frontier,
// §3.6 linear expected costs, rebucketing) at several input sizes.
package lecopt

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/expcost"
	"lecopt/internal/experiments"
	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

// benchExperiment runs one experiment table per iteration and fails the
// benchmark if the experiment's claim does not hold.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !tab.Pass {
			b.Fatalf("%s claim failed", id)
		}
	}
}

func BenchmarkE1MotivatingExample(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2VarianceSweep(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3SystemRBaseline(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4AlgorithmA(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5TopCFrontier(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6AlgorithmB(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7AlgorithmC(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8AlgCScaling(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9DynamicMemory(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10AlgorithmD(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11SortMergeLinear(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12NestedLoopLinear(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13Rebucketing(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Bucketing(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15EngineValidation(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16Fleet(b *testing.B)            { benchExperiment(b, "E16") }
func BenchmarkE17EndToEnd(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkE18Parametric(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE19LevelSetEC(b *testing.B)       { benchExperiment(b, "E19") }
func BenchmarkE20Refinement(b *testing.B)       { benchExperiment(b, "E20") }

// --- primitive micro-benchmarks -----------------------------------------

func randLaw(rng *rand.Rand, n int, lo, hi float64) dist.Dist {
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*rng.Float64()
		probs[i] = rng.Float64() + 0.01
	}
	return dist.MustNew(vals, probs)
}

// BenchmarkJoinECNaive/Linear measure the §3.6.1 complexity claim
// directly: the naive evaluator is cubic in b, the linear one linear.
func BenchmarkJoinECNaive(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("b=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randLaw(rng, n, 1, 1e6)
			bb := randLaw(rng, n, 1, 1e6)
			m := randLaw(rng, n, 2, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				expcost.JoinECNaive(cost.SortMerge, a, bb, m)
			}
		})
	}
}

func BenchmarkJoinECLinear(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("b=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randLaw(rng, n, 1, 1e6)
			bb := randLaw(rng, n, 1, 1e6)
			m := randLaw(rng, n, 2, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				expcost.JoinECLinear(cost.SortMerge, a, bb, m)
			}
		})
	}
}

// BenchmarkTopCCombine measures the Proposition 3.1 frontier.
func BenchmarkTopCCombine(b *testing.B) {
	for _, c := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			left := make([]float64, 2*c)
			right := make([]float64, 2*c)
			for i := range left {
				left[i] = rng.Float64()
				right[i] = rng.Float64()
			}
			sort.Float64s(left)
			sort.Float64s(right)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				optimizer.TopCCombine(left, right, c)
			}
		})
	}
}

// BenchmarkAlgorithmC measures one full LEC optimization across query
// sizes — the headline "b times a standard optimization" cost.
func BenchmarkAlgorithmC(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("tables=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			sc, err := workload.Generate(workload.DefaultSpec(n, workload.Chain), rng)
			if err != nil {
				b.Fatal(err)
			}
			mem := dist.MustNew([]float64{64, 256, 1024, 4096}, []float64{1, 1, 1, 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, mem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLSC is the classical baseline for comparison with AlgorithmC.
func BenchmarkLSC(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("tables=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			sc, err := workload.Generate(workload.DefaultSpec(n, workload.Chain), rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, 1024); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeBatch measures the concurrent batch pipeline on a slice
// of the differential corpus: the throughput trajectory that
// BENCH_batch.json captures from lecbench, reproducible under go test.
func BenchmarkOptimizeBatch(b *testing.B) {
	corpus := diffCorpus(b)[:40]
	jobs := make([]BatchJob, len(corpus))
	for i, sc := range corpus {
		jobs[i] = BatchJob{Scenario: sc, Alg: AlgC}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range OptimizeBatch(jobs, BatchOptions{Workers: workers}) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	b.Run("workers=4/cache", func(b *testing.B) {
		cache := NewPlanCache(1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range OptimizeBatch(jobs, BatchOptions{Workers: 4, Cache: cache}) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkRebucket measures §3.6.3 rebucketing.
func BenchmarkRebucket(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("from=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			law := randLaw(rng, n, 1, 1e6)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := law.Rebucket(27); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
